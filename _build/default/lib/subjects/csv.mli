(** CSV parser modelled on the paper's [csvparser] subject: comma-separated
    fields, newline-separated records, double-quoted fields with [""]
    escapes. *)

val subject : Subject.t
