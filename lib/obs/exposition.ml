(* Prometheus text exposition of a metrics snapshot, plus the inverse
   parse and the `pfuzzer_cli monitor` dashboard render. Everything here
   is pure string-to-string so both directions golden-test directly. *)

module Histogram = Pdf_util.Stats.Histogram

(* Prometheus metric names admit [a-zA-Z0-9_:]; registry names use '/'
   as a namespace separator ("phase/exec_ns"), which maps to '_'. *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let metric_name name = "pfuzzer_" ^ sanitize name

(* Integral floats print without an exponent or trailing zeros so the
   common case (counters, integer-valued gauges) stays readable and
   byte-stable for goldens. *)
let float_text v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let prometheus (s : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf l; Buffer.add_char buf '\n') fmt in
  line "# TYPE pfuzzer_snapshot_clock gauge";
  line "pfuzzer_snapshot_clock %d" s.Metrics.clock;
  List.iter
    (fun (name, v) ->
      let n = metric_name name in
      line "# TYPE %s counter" n;
      line "%s %d" n v)
    s.Metrics.counters;
  List.iter
    (fun (name, v) ->
      let n = metric_name name in
      line "# TYPE %s gauge" n;
      line "%s %s" n (float_text v))
    s.Metrics.gauges;
  List.iter
    (fun (name, h) ->
      let n = metric_name name in
      line "# TYPE %s summary" n;
      List.iter
        (fun q ->
          line "%s{quantile=\"%s\"} %d" n q
            (Histogram.percentile h (100.0 *. float_of_string q)))
        [ "0.5"; "0.9"; "0.99" ];
      line "%s_sum %d" n (Histogram.sum h);
      line "%s_count %d" n (Histogram.count h))
    s.Metrics.histograms;
  Buffer.contents buf

(* {1 Parsing} *)

type family = {
  fname : string;
  ftype : string;  (* "counter" | "gauge" | "summary" | "untyped" *)
  samples : (string * float) list;  (* sample name incl. label suffix *)
}

let parse text =
  let declared = Hashtbl.create 16 in
  let order = ref [] in
  let samples = Hashtbl.create 16 in
  let base_of sample =
    match String.index_opt sample '{' with
    | Some i -> String.sub sample 0 i
    | None -> sample
  in
  let family_of base =
    (* summary child series attach to their parent family *)
    let strip suffix b =
      let n = String.length b and m = String.length suffix in
      if n > m && String.sub b (n - m) m = suffix then Some (String.sub b 0 (n - m))
      else None
    in
    match strip "_sum" base with
    | Some parent when Hashtbl.mem declared parent -> parent
    | _ ->
      (match strip "_count" base with
       | Some parent when Hashtbl.mem declared parent -> parent
       | _ -> base)
  in
  String.split_on_char '\n' text
  |> List.iter (fun raw ->
         let l = String.trim raw in
         if l = "" then ()
         else if String.length l > 0 && l.[0] = '#' then begin
           match String.split_on_char ' ' l with
           | [ "#"; "TYPE"; name; ty ] ->
             if not (Hashtbl.mem declared name) then begin
               Hashtbl.replace declared name ty;
               order := name :: !order
             end
           | _ -> ()
         end
         else
           match String.rindex_opt l ' ' with
           | None -> ()
           | Some i ->
             let sample = String.sub l 0 i in
             let v = String.sub l (i + 1) (String.length l - i - 1) in
             (match float_of_string_opt v with
              | None -> ()
              | Some v ->
                let fam = family_of (base_of sample) in
                if not (Hashtbl.mem declared fam) then begin
                  Hashtbl.replace declared fam "untyped";
                  order := fam :: !order
                end;
                let prev = try Hashtbl.find samples fam with Not_found -> [] in
                Hashtbl.replace samples fam ((sample, v) :: prev)));
  List.rev_map
    (fun name ->
      {
        fname = name;
        ftype = Hashtbl.find declared name;
        samples = List.rev (try Hashtbl.find samples name with Not_found -> []);
      })
    !order

(* {1 Dashboard render} *)

let render families =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun l -> Buffer.add_string buf l; Buffer.add_char buf '\n') fmt in
  add "[pfuzzer monitor] %d %s" (List.length families)
    (if List.length families = 1 then "family" else "families");
  let width =
    List.fold_left
      (fun acc f ->
        List.fold_left (fun acc (s, _) -> max acc (String.length s)) acc f.samples)
      0 families
  in
  List.iter
    (fun f ->
      add "%-7s %s" f.ftype f.fname;
      List.iter
        (fun (sample, v) -> add "  %-*s %s" width sample (float_text v))
        f.samples)
    families;
  Buffer.contents buf
