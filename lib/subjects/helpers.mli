(** Shared lexing helpers for the instrumented subject parsers. Every
    helper routes character examination through the tracked comparison
    operations so the instrumentation sees each decision. *)

module Ctx = Pdf_instr.Ctx
module Site = Pdf_instr.Site

val skip_set :
  Ctx.t -> Site.t -> label:string -> Pdf_util.Charset.t -> unit
(** Consume characters while they belong to the set. Stops at EOF. *)

val read_set :
  Ctx.t -> Site.t -> label:string -> Pdf_util.Charset.t -> Pdf_taint.Tstring.t
(** Consume and collect characters while they belong to the set. *)

val expect : Ctx.t -> Site.t -> char -> unit
(** Consume the next character, which must equal the expectation;
    otherwise reject (also on EOF). *)

val peek_is : Ctx.t -> Site.t -> char -> bool
(** Tracked test of the next character without consuming it; false at
    EOF (recording the EOF access). *)

val eat_if : Ctx.t -> Site.t -> char -> bool
(** [peek_is] and consume on success. *)

val whitespace : Pdf_util.Charset.t
(** Space, tab, CR, LF. *)

(** Continuation-style counterparts of the helpers above, for machine-form
    (resumable) parsers. A parser fragment is a [k]; sequencing is by
    continuation, and every input observation goes through a
    {!Pdf_instr.Machine} step so the driver can journal read boundaries.
    Fragments built only from these combinators automatically satisfy the
    machine discipline: no direct [Ctx.peek]/[next]/[at_eof], and no
    [Ctx.t] captured across a step. *)
module K : sig
  type k = Ctx.t -> Pdf_instr.Machine.step

  val stop : k
  (** Accept: finish the parse. *)

  val peek : (Pdf_taint.Tchar.t option -> k) -> k
  (** Observe the next character without consuming it. *)

  val next : (Pdf_taint.Tchar.t option -> k) -> k
  (** Consume and observe the next character. *)

  val skip : k -> k
  (** Consume the next character, ignoring it (use after a peek decided). *)

  val with_frame : Site.t -> (k -> k) -> k -> k
  (** [with_frame site body k]: run [body] one stack level deeper; the
      frame is exited before [k] runs. *)

  val skip_set : Site.t -> label:string -> Pdf_util.Charset.t -> k -> k
  val read_set :
    Site.t -> label:string -> Pdf_util.Charset.t -> (Pdf_taint.Tstring.t -> k) -> k
  val expect : Site.t -> char -> k -> k
  val peek_is : Site.t -> char -> (bool -> k) -> k
  val eat_if : Site.t -> char -> (bool -> k) -> k
end
