lib/afl/afl.ml: Bitmap List Mutator Pdf_instr Pdf_subjects Pdf_util String
