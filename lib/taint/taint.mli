(** Taints: the set of input positions a value is derived from.

    The paper's prototype taints every input character with a unique
    identifier and propagates taints through derived values (Section 4).
    Here a taint is the set of 0-based indices into the current input
    string. Values read directly from the input carry singleton taints;
    values computed from several characters accumulate the union. *)

type t

val empty : t
(** The taint of constants: not derived from the input at all. *)

val singleton : int -> t
(** Taint of the input character at the given index. *)

val union : t -> t -> t
(** Taint accumulation for derived values. *)

val is_empty : t -> bool
val mem : int -> t -> bool

val max_index : t -> int option
(** The rightmost input position involved, i.e. where a substitution must
    be applied to change this value. [None] for {!empty}. *)

val max_index_raw : t -> int
(** [max_index] without the option allocation: [-1] for {!empty}. For the
    execution hot path, where every emitted comparison event queries the
    operand's taint. *)

val min_index : t -> int option

val cardinal : t -> int
val to_list : t -> int list
(** Ascending. *)

val of_list : int list -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
