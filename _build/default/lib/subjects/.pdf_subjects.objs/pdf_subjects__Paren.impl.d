lib/subjects/paren.ml: Helpers List Pdf_instr Printf String Subject Token
