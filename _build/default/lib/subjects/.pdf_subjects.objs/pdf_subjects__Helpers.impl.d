lib/subjects/helpers.ml: Pdf_instr Pdf_taint Pdf_util Printf
