(** Staged (compiled-tier) parser combinators.

    The machine-form subjects are written against the continuation
    algebra in [lib/subjects/helpers.ml] ([K]): a fragment is a
    [Ctx.t -> Machine.step], and every combinator builds its step nodes,
    reject strings and dispatch closures {e each time a fragment is
    applied to a context} — once per character on the hot loops. This
    module is the same algebra with the construction moved to {e staging
    time}: combinators do their work when the parser is assembled (at
    module initialisation, or on nonterminal entry for recursive
    productions) and return fragments whose application is direct calls
    over pre-built step nodes. A staged recognizer is an ordinary
    {!Machine.recognizer}, so journaling, snapshots and resume
    ({!Runner}) work on it unchanged.

    Staging must never change what a parser {e observes}: a compiled
    subject makes exactly the [Ctx] calls its interpreted twin makes, in
    the same order with the same arguments (reject strings included), so
    verdicts, comparison logs, coverage, traces and path identities are
    bit-identical between engines. [lib/check]'s cross-engine invariant
    holds subjects to this. *)

type k = Ctx.t -> Machine.step
(** A staged parser fragment; same type as the interpreted [K.k]. *)

type t = k
(** A staged recognizer (the whole parser). Coincides with
    {!Machine.recognizer}. *)

val stop : k
(** Finish parsing. *)

val peek : (Pdf_taint.Tchar.t option -> k) -> k
(** Look at the next character without consuming it. The step node is
    built once, at staging; the continuation runs per application. *)

val next : (Pdf_taint.Tchar.t option -> k) -> k
(** Consume and examine the next character. *)

val skip : k -> k
(** Consume the (already peeked) character at the cursor, ignoring it. *)

val with_frame : Site.t -> (k -> k) -> k -> k
(** [with_frame site body k] brackets [body] in a call frame. [body] is
    applied {e once}, at staging — bodies needing per-application
    effects must return a closure performing them (e.g.
    [fun ctx -> Ctx.tick ctx; node ctx]). *)

val fix : (k -> k) -> k
(** [fix (fun self -> body)] stages a self-referential fragment once:
    [self] dispatches back to the staged body. Use for loops whose
    continuation set is fixed (line loops, record cycles); truly
    recursive nonterminals should remain functions that re-enter per
    application. The internal ref is written once during staging, so
    the result is safe to share across domains. *)

val skip_while : (Pdf_taint.Tchar.t -> Ctx.t -> bool) -> k -> k
(** Allocation-free character-skipping loop: two step nodes tied into a
    cycle. [test] must itself be the tracked observation
    ([Ctx.in_range], [Ctx.in_set], …) — it runs once per character. *)

(** {2 Pre-resolved instrumentation slots}

    Constructors for {!Ctx.slot}: each freezes a branch site's two
    outcome ids together with the comparison-event kind its tracked
    [Ctx] counterpart would build per call. Subjects stage these at
    assembly time and observe through [Ctx.eq_slot] and friends, so the
    per-character path does no site dispatch and allocates no kind
    block — with comparison logs structurally identical to the
    interpreted twin's. *)

val slot_eq : Site.t -> char -> Ctx.slot
val slot_range : Site.t -> char -> char -> Ctx.slot
val slot_set : Site.t -> label:string -> Pdf_util.Charset.t -> Ctx.slot
val slot_one_of : Site.t -> string -> Ctx.slot

val skip_set : Site.t -> label:string -> Pdf_util.Charset.t -> k -> k
(** [skip_while] over a staged {!Ctx.in_set_slot}, mirroring
    [K.skip_set]. *)

val skip_range : Site.t -> char -> char -> k -> k
(** [skip_while] over a staged {!Ctx.in_range_slot}, mirroring the
    interpreted digit loops. *)

val read_set :
  Site.t -> label:string -> Pdf_util.Charset.t ->
  (Pdf_taint.Tstring.t -> k) -> k
(** Accumulating variant, mirroring [K.read_set]. Builds per character
    (the accumulator makes each loop state distinct and must survive in
    suspensions), so it stages nothing — use only off the hot path. *)

val reject_msgs : char -> string * string
(** [(eof_message, mismatch_message)] for an expected character, byte
    for byte what [K.expect] formats. Precompute these for productions
    that call {!expect_with} at runtime. *)

val expect : Site.t -> char -> k -> k
(** Demand one specific character; both reject messages are formatted at
    staging. *)

val expect_with : msg_eof:string -> msg:string -> Site.t -> char -> k -> k
(** {!expect} with caller-precomputed messages, for productions staged
    per entry (recursive nonterminals) that must not re-format them. *)

val peek_is : Site.t -> char -> (bool -> k) -> k
(** Mirrors [K.peek_is]; both boolean continuations are forced at
    staging. *)

val eat_if : Site.t -> char -> (bool -> k) -> k
(** Mirrors [K.eat_if]; both boolean continuations are forced at
    staging. *)
