module Cfg = Pdf_tables.Cfg
module Analysis = Pdf_tables.Analysis
module Ll1 = Pdf_tables.Ll1
module Driver = Pdf_tables.Driver
module Grammars = Pdf_tables.Grammars
module Charset = Pdf_util.Charset
module Subject = Pdf_subjects.Subject
module Runner = Pdf_instr.Runner
module Rng = Pdf_util.Rng

let qtest = QCheck_alcotest.to_alcotest

(* A tiny textbook grammar with known FIRST/FOLLOW sets:
     S -> 'a' S | B 'c'
     B -> 'b' B | ε *)
let textbook =
  Cfg.make ~start:"s"
    [
      { Cfg.lhs = "s"; rhs = [ Cfg.T 'a'; Cfg.N "s" ] };
      { Cfg.lhs = "s"; rhs = [ Cfg.N "b"; Cfg.T 'c' ] };
      { Cfg.lhs = "b"; rhs = [ Cfg.T 'b'; Cfg.N "b" ] };
      { Cfg.lhs = "b"; rhs = [] };
    ]

let charset = Alcotest.testable Charset.pp Charset.equal

let test_cfg_validation () =
  Alcotest.check_raises "undefined nonterminal"
    (Invalid_argument "Cfg.make: nonterminal \"ghost\" has no production") (fun () ->
      ignore (Cfg.make ~start:"s" [ { Cfg.lhs = "s"; rhs = [ Cfg.N "ghost" ] } ]));
  Alcotest.check_raises "undefined start"
    (Invalid_argument "Cfg.make: start symbol \"t\" has no production") (fun () ->
      ignore (Cfg.make ~start:"t" [ { Cfg.lhs = "s"; rhs = [] } ]))

let test_cfg_accessors () =
  Alcotest.(check (list string)) "nonterminals in order" [ "s"; "b" ]
    (Cfg.nonterminals textbook);
  Alcotest.(check int) "productions of s" 2 (List.length (Cfg.productions_of textbook "s"));
  Alcotest.(check int) "index of first" 0
    (Cfg.production_index textbook (List.hd (Cfg.productions textbook)))

let test_nullable () =
  let a = Analysis.analyze textbook in
  Alcotest.(check bool) "b nullable" true (Analysis.nullable a "b");
  Alcotest.(check bool) "s not nullable" false (Analysis.nullable a "s")

let test_first () =
  let a = Analysis.analyze textbook in
  Alcotest.check charset "FIRST(s) = {a,b,c}" (Charset.of_string "abc")
    (Analysis.first a "s");
  Alcotest.check charset "FIRST(b) = {b}" (Charset.of_string "b") (Analysis.first a "b")

let test_follow () =
  let a = Analysis.analyze textbook in
  Alcotest.check charset "FOLLOW(b) = {c}" (Charset.of_string "c")
    (Analysis.follow a "b");
  Alcotest.(check bool) "EOF follows s" true (Analysis.follow_eof a "s");
  Alcotest.(check bool) "EOF does not follow b" false (Analysis.follow_eof a "b")

let test_first_of_rhs () =
  let a = Analysis.analyze textbook in
  let set, nullable = Analysis.first_of_rhs a [ Cfg.N "b"; Cfg.T 'c' ] in
  Alcotest.check charset "FIRST(Bc)" (Charset.of_string "bc") set;
  Alcotest.(check bool) "Bc not nullable" false nullable;
  let _, nullable = Analysis.first_of_rhs a [ Cfg.N "b" ] in
  Alcotest.(check bool) "B nullable" true nullable

let test_ll1_build () =
  match Ll1.build textbook with
  | Error c -> Alcotest.failf "unexpected conflict: %a" Ll1.pp_conflict c
  | Ok table ->
    Alcotest.(check bool) "s/a entry" true (Ll1.lookup table "s" 'a' <> None);
    Alcotest.(check bool) "s/b entry selects B c" true
      (match Ll1.lookup table "s" 'b' with
       | Some p -> p.Cfg.rhs = [ Cfg.N "b"; Cfg.T 'c' ]
       | None -> false);
    Alcotest.(check bool) "b/c entry is the epsilon production" true
      (match Ll1.lookup table "b" 'c' with Some p -> p.Cfg.rhs = [] | None -> false);
    Alcotest.(check bool) "no EOF entry for s" true (Ll1.lookup_eof table "s" = None);
    Alcotest.check charset "expected(s)" (Charset.of_string "abc")
      (Ll1.expected table "s");
    Alcotest.(check bool) "entries enumerated" true (List.length (Ll1.entries table) >= 4)

let test_ll1_conflict () =
  (* S -> 'a' | 'a' 'b' is not LL(1). *)
  let ambiguous =
    Cfg.make ~start:"s"
      [ { Cfg.lhs = "s"; rhs = [ Cfg.T 'a' ] }; { Cfg.lhs = "s"; rhs = [ Cfg.T 'a'; Cfg.T 'b' ] } ]
  in
  match Ll1.build ambiguous with
  | Ok _ -> Alcotest.fail "conflict not detected"
  | Error c ->
    Alcotest.(check string) "conflicting nonterminal" "s" c.nonterminal;
    Alcotest.(check (option char)) "conflicting lookahead" (Some 'a') c.lookahead

let test_left_recursion_conflict () =
  (* Left recursion is never LL(1). *)
  let lrec =
    Cfg.make ~start:"e"
      [ { Cfg.lhs = "e"; rhs = [ Cfg.N "e"; Cfg.T '+' ] }; { Cfg.lhs = "e"; rhs = [ Cfg.T 'n' ] } ]
  in
  match Ll1.build lrec with
  | Ok _ -> Alcotest.fail "left recursion not rejected"
  | Error _ -> ()

let test_json_grammar_analysis () =
  let a = Analysis.analyze Grammars.json in
  Alcotest.(check bool) "ws nullable" true (Analysis.nullable a "ws");
  Alcotest.(check bool) "value not nullable" false (Analysis.nullable a "value");
  let first_value = Analysis.first a "value" in
  List.iter
    (fun c ->
      Alcotest.(check bool) (Printf.sprintf "FIRST(value) has %C" c) true
        (Charset.mem c first_value))
    [ '{'; '['; '"'; '-'; '0'; '9'; 't'; 'f'; 'n' ];
  Alcotest.(check bool) "FIRST(value) lacks '}'" false (Charset.mem '}' first_value);
  Alcotest.(check bool) "EOF follows the start symbol" true
    (Analysis.follow_eof a "json")

let prop_table_entries_consistent =
  (* Every enumerated cell must round-trip through lookup. *)
  QCheck.Test.make ~name:"Ll1.entries agrees with Ll1.lookup" ~count:1
    QCheck.unit
    (fun () ->
      List.for_all
        (fun table ->
          List.for_all
            (fun (nt, lookahead, production_index) ->
              let found =
                match lookahead with
                | Some c -> Ll1.lookup table nt c
                | None -> Ll1.lookup_eof table nt
              in
              match found with
              | Some p -> Cfg.production_index (Ll1.grammar table) p = production_index
              | None -> false)
            (Ll1.entries table))
        [ Grammars.arith_table; Grammars.dyck_table; Grammars.json_table ])

(* {1 Driver} *)

let test_driver_accepts () =
  List.iter
    (fun input ->
      if not (Subject.accepts Grammars.table_expr input) then
        Alcotest.failf "table-expr should accept %S" input)
    [ "1"; "+1"; "-1"; "12"; "1+1"; "(2-94)"; "((3))"; "1+2-3" ]

let test_driver_rejects () =
  List.iter
    (fun input ->
      match (Subject.run Grammars.table_expr input).Runner.verdict with
      | Runner.Rejected _ -> ()
      | v ->
        Alcotest.failf "table-expr should reject %S but %a" input Runner.pp_verdict v)
    [ ""; "A"; "("; "1)"; "()"; "1+"; "+" ]

let gen_any_string =
  QCheck.string_gen_of_size (QCheck.Gen.int_range 0 12)
    (QCheck.Gen.oneof
       [ QCheck.Gen.oneofl [ '('; ')'; '+'; '-'; '5'; '0' ]; QCheck.Gen.printable ])

let prop_driver_matches_recursive_descent =
  QCheck.Test.make
    ~name:"table-driven and recursive-descent parsers agree on every string"
    ~count:1000 gen_any_string
    (fun input ->
      let rd = Subject.accepts (Pdf_subjects.Catalog.find "expr") input in
      let tbl = Subject.accepts Grammars.table_expr input in
      rd = tbl)

let prop_naive_driver_same_language =
  QCheck.Test.make
    ~name:"instrumentation mode does not change the accepted language"
    ~count:500 gen_any_string
    (fun input ->
      Subject.accepts Grammars.table_expr input
      = Subject.accepts Grammars.table_expr_naive input)

let test_json_table_builds () =
  Alcotest.(check bool) "hundreds of productions" true
    (List.length (Cfg.productions Grammars.json) > 200);
  Alcotest.(check bool) "hundreds of table cells" true
    (List.length (Ll1.entries Grammars.json_table) > 300)

let test_json_table_agrees () =
  let rd = Pdf_subjects.Catalog.find "json" in
  List.iter
    (fun input ->
      Alcotest.(check bool)
        (Printf.sprintf "table-json agrees on %S" input)
        (Subject.accepts rd input)
        (Subject.accepts Grammars.table_json input))
    [ "1"; "-2.5e3"; "[]"; "[1, 2]"; "{\"k\": true}"; "\"s\\n\""; "null";
      "true"; "false"; "tru"; "{\"a\":[{},[false]]}"; "[1,]"; ""; "1.";
      " 5 "; "\"\\u0041\""; "{"; "[1 2]" ]

let prop_json_table_accepts_rd_valid =
  (* Any input the recursive-descent JSON accepts (sans context-sensitive
     surrogate pairs, which an LL(1) grammar cannot express) must be
     accepted by the table parser. *)
  QCheck.Test.make ~name:"table json accepts rd-valid inputs" ~count:200
    QCheck.small_int
    (fun seed ->
      let rng = Rng.make seed in
      let buf = Buffer.create 32 in
      let rec value depth =
        match (if depth > 2 then Rng.int rng 4 else Rng.int rng 6) with
        | 0 -> Buffer.add_string buf (string_of_int (Rng.int rng 100))
        | 1 -> Buffer.add_string buf "\"s\""
        | 2 -> Buffer.add_string buf (Rng.choose rng [| "true"; "false"; "null" |])
        | 3 -> Buffer.add_string buf (Printf.sprintf "-%d.5e%d" (Rng.int rng 9) (Rng.int rng 9))
        | 4 ->
          Buffer.add_char buf '[';
          let count = Rng.int rng 3 in
          for i = 0 to count - 1 do
            if i > 0 then Buffer.add_char buf ',';
            value (depth + 1)
          done;
          Buffer.add_char buf ']'
        | _ ->
          Buffer.add_char buf '{';
          let count = Rng.int rng 3 in
          for i = 0 to count - 1 do
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (Printf.sprintf "\"k%d\":" i);
            value (depth + 1)
          done;
          Buffer.add_char buf '}'
      in
      value 0;
      Subject.accepts Grammars.table_json (Buffer.contents buf))

let test_dyck_table_driver () =
  let subject =
    Driver.subject ~name:"table-dyck-test" ~description:"test" Grammars.dyck_table
  in
  List.iter
    (fun (input, expected) ->
      Alcotest.(check bool) (Printf.sprintf "dyck %S" input) expected
        (Subject.accepts subject input))
    [ ("", true); ("()", true); ("([{<>}])", true); ("(", false); (")(", false) ]

let test_table_coverage_modes () =
  (* Table-element mode registers many more sites (the cells). *)
  let code_sites = Pdf_instr.Site.site_count Grammars.table_expr_naive.Subject.registry in
  let cell_sites = Pdf_instr.Site.site_count Grammars.table_expr.Subject.registry in
  Alcotest.(check bool) "cells add sites" true (cell_sites > code_sites + 10)

let test_section_7_1_prediction () =
  (* The paper's §7.1 claim, measured: with table-element coverage and
     diagnostics the search works; out of the box it stalls. *)
  let fuzz subject =
    let r =
      Pdf_core.Pfuzzer.fuzz
        { Pdf_core.Pfuzzer.default_config with max_executions = 4000 }
        subject
    in
    List.length r.valid_inputs
  in
  let guided = fuzz Grammars.table_expr in
  let naive = fuzz Grammars.table_expr_naive in
  Alcotest.(check bool)
    (Printf.sprintf "guided (%d) finds several times naive (%d)" guided naive)
    true
    (guided >= 3 * max naive 1)

let () =
  Alcotest.run "pdf_tables"
    [
      ( "cfg",
        [
          Alcotest.test_case "validation" `Quick test_cfg_validation;
          Alcotest.test_case "accessors" `Quick test_cfg_accessors;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "nullable" `Quick test_nullable;
          Alcotest.test_case "first" `Quick test_first;
          Alcotest.test_case "follow" `Quick test_follow;
          Alcotest.test_case "first_of_rhs" `Quick test_first_of_rhs;
          Alcotest.test_case "json grammar analysis" `Quick test_json_grammar_analysis;
        ] );
      ( "ll1",
        [
          Alcotest.test_case "table construction" `Quick test_ll1_build;
          Alcotest.test_case "conflict detection" `Quick test_ll1_conflict;
          Alcotest.test_case "left recursion rejected" `Quick test_left_recursion_conflict;
          qtest prop_table_entries_consistent;
        ] );
      ( "driver",
        [
          Alcotest.test_case "accepts" `Quick test_driver_accepts;
          Alcotest.test_case "rejects" `Quick test_driver_rejects;
          Alcotest.test_case "dyck table" `Quick test_dyck_table_driver;
          Alcotest.test_case "json table builds" `Quick test_json_table_builds;
          Alcotest.test_case "json table agrees with rd" `Quick test_json_table_agrees;
          qtest prop_json_table_accepts_rd_valid;
          Alcotest.test_case "coverage modes" `Quick test_table_coverage_modes;
          Alcotest.test_case "section 7.1 prediction" `Quick test_section_7_1_prediction;
          qtest prop_driver_matches_recursive_descent;
          qtest prop_naive_driver_same_language;
        ] );
    ]
