module Charset = Pdf_util.Charset
module Rng = Pdf_util.Rng

let pick rng set =
  let printable = Charset.inter set (Charset.add '\n' (Charset.add '\t' Charset.printable)) in
  match Charset.pick rng printable with
  | Some _ as c -> c
  | None -> Charset.pick rng set

let solve rng ~base ~min_length pc =
  if not (Path_constraint.satisfiable pc) then None
  else begin
    let constrained_end =
      match Path_constraint.max_index pc with Some i -> i + 1 | None -> 0
    in
    let length = max (String.length base) (max min_length constrained_end) in
    let out = Bytes.create length in
    let ok = ref true in
    for i = 0 to length - 1 do
      let set = Path_constraint.allowed i pc in
      let current = if i < String.length base then Some base.[i] else None in
      match current with
      | Some c when Charset.mem c set -> Bytes.set out i c
      | Some _ | None ->
        (match pick rng set with
         | Some c -> Bytes.set out i c
         | None -> ok := false)
    done;
    if !ok then Some (Bytes.to_string out) else None
  end
