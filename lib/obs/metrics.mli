(** A small counter/gauge/histogram registry.

    Handles are cheap mutable cells resolved once by name; the hot path
    touches the cell, never the table. Histograms are
    {!Pdf_util.Stats.Histogram}s, so registry snapshots can be merged
    across shards associatively. *)

type t

val create : unit -> t

type counter

val counter : t -> string -> counter
(** Resolve (registering on first use). Raises [Invalid_argument] if the
    name is already registered as a different instrument type. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

type gauge

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : t -> string -> Pdf_util.Stats.Histogram.t

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * Pdf_util.Stats.Histogram.t) list;
}

val snapshot : t -> snapshot
(** Name-sorted, deterministic ordering. *)
