lib/util/render.mli: Format
