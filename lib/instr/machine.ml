module Tchar = Pdf_taint.Tchar

(* A step-wise (continuation-style) recognizer. The parser never touches
   the input stream directly: every read is reified as a [Peek] or
   [Next] step whose continuation receives the character *and* the
   context to keep parsing with. Because continuations are ordinary
   immutable closures that capture no context (the context always
   arrives as an argument), a pending step is multi-shot: the runner can
   deliver it once against the parent's context and again, later,
   against a fresh context restored from a snapshot — the basis of the
   incremental prefix cache (see {!Runner}). *)
type step =
  | Done
  | Peek of (Tchar.t option -> Ctx.t -> step)
  | Next of (Tchar.t option -> Ctx.t -> step)

type recognizer = Ctx.t -> step

let rec drive ctx = function
  | Done -> ()
  | Peek k -> drive ctx (k (Ctx.peek ctx) ctx)
  | Next k -> drive ctx (k (Ctx.next ctx) ctx)

let run ctx (recognizer : recognizer) = drive ctx (recognizer ctx)
