examples/fuzz_tinyc.mli:
