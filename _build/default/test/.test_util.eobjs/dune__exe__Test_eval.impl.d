test/test_eval.ml: Alcotest Buffer Float Format List Pdf_eval Pdf_subjects Printf String
