module Ctx = Pdf_instr.Ctx
module Site = Pdf_instr.Site
module Charset = Pdf_util.Charset
module Tstring = Pdf_taint.Tstring

let whitespace = Charset.of_string " \t\r\n"

let rec skip_set ctx site ~label set =
  match Ctx.peek ctx with
  | None -> ()
  | Some c ->
    if Ctx.in_set ctx site ~label c set then begin
      ignore (Ctx.next ctx);
      skip_set ctx site ~label set
    end

let read_set ctx site ~label set =
  (* Accumulate in reverse and build the token once: appending to an
     immutable Tstring per character would copy the whole prefix each
     time (quadratic in token length). *)
  let rec go acc =
    match Ctx.peek ctx with
    | None -> acc
    | Some c ->
      if Ctx.in_set ctx site ~label c set then begin
        ignore (Ctx.next ctx);
        go (c :: acc)
      end
      else acc
  in
  Tstring.of_chars (List.rev (go []))

let expect ctx site expected =
  match Ctx.next ctx with
  | None -> Ctx.reject ctx (Printf.sprintf "expected %C, found end of input" expected)
  | Some c ->
    if not (Ctx.eq ctx site c expected) then
      Ctx.reject ctx (Printf.sprintf "expected %C" expected)

let peek_is ctx site expected =
  match Ctx.peek ctx with
  | None -> false
  | Some c -> Ctx.eq ctx site c expected

let eat_if ctx site expected =
  if peek_is ctx site expected then begin
    ignore (Ctx.next ctx);
    true
  end
  else false
