lib/eval/experiment.ml: Array List Parallel Pdf_instr Pdf_subjects Printf Token_report Tool
