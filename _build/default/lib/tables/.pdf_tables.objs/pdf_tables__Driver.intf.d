lib/tables/driver.mli: Ll1 Pdf_subjects
