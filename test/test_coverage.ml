(* Property tests for the bitset {!Pdf_instr.Coverage} against a
   [Set.Make (Int)] reference model.

   The bitset's word-parallel operations (SWAR popcount in particular)
   have failure modes a few unit tests will not catch — e.g. a popcount
   that is correct modulo small counts but wrong once byte sums carry
   past bit 32. Driving both implementations with the same random
   operation sequences and comparing every observation closes that
   gap. *)

module Coverage = Pdf_instr.Coverage
module Iset = Set.Make (Int)

let qtest = QCheck_alcotest.to_alcotest

(* Outcome ids span several bitset words, including ids right at word
   boundaries (63-bit words: 62, 63, 64, 125, 126, ...). *)
let oid_gen =
  QCheck.(
    oneof
      [
        int_range 0 400;
        (* word-boundary neighbourhoods *)
        map (fun k -> (Sys.int_size * (1 + (abs k mod 6))) - 1 + (abs k mod 3))
          small_int;
      ])

let oids_gen = QCheck.small_list oid_gen

let of_model s = Coverage.of_list (Iset.elements s)

let check_same_elements name (model : Iset.t) (cov : Coverage.t) =
  if Coverage.to_list cov <> Iset.elements model then
    QCheck.Test.fail_reportf "%s: to_list mismatch" name;
  if Coverage.cardinal cov <> Iset.cardinal model then
    QCheck.Test.fail_reportf "%s: cardinal %d, model %d" name
      (Coverage.cardinal cov) (Iset.cardinal model);
  if Coverage.is_empty cov <> Iset.is_empty model then
    QCheck.Test.fail_reportf "%s: is_empty mismatch" name;
  true

let test_build =
  QCheck.Test.make ~name:"of_list/add agree with model" ~count:500 oids_gen
    (fun oids ->
      let model = Iset.of_list oids in
      let by_of_list = Coverage.of_list oids in
      let by_add =
        List.fold_left (fun acc i -> Coverage.add i acc) Coverage.empty oids
      in
      ignore (check_same_elements "of_list" model by_of_list);
      ignore (check_same_elements "add" model by_add);
      if not (Coverage.equal by_of_list by_add) then
        QCheck.Test.fail_report "of_list and add built unequal sets";
      true)

let test_mem =
  QCheck.Test.make ~name:"mem agrees with model" ~count:500
    QCheck.(pair oids_gen oid_gen)
    (fun (oids, probe) ->
      let model = Iset.of_list oids in
      let cov = Coverage.of_list oids in
      List.for_all (fun i -> Coverage.mem i cov) oids
      && Coverage.mem probe cov = Iset.mem probe model)

let test_union =
  QCheck.Test.make ~name:"union agrees with model" ~count:500
    QCheck.(pair oids_gen oids_gen)
    (fun (a, b) ->
      let ma = Iset.of_list a and mb = Iset.of_list b in
      check_same_elements "union"
        (Iset.union ma mb)
        (Coverage.union (of_model ma) (of_model mb)))

let test_diff =
  QCheck.Test.make ~name:"diff agrees with model" ~count:500
    QCheck.(pair oids_gen oids_gen)
    (fun (a, b) ->
      let ma = Iset.of_list a and mb = Iset.of_list b in
      check_same_elements "diff"
        (Iset.diff ma mb)
        (Coverage.diff (of_model ma) (of_model mb)))

let test_new_against =
  QCheck.Test.make ~name:"new_against = |c \\ baseline|" ~count:500
    QCheck.(pair oids_gen oids_gen)
    (fun (c, baseline) ->
      let mc = Iset.of_list c and mb = Iset.of_list baseline in
      Coverage.new_against (of_model mc) ~baseline:(of_model mb)
      = Iset.cardinal (Iset.diff mc mb))

let test_equal =
  QCheck.Test.make ~name:"equal ignores trailing zero words" ~count:500
    QCheck.(pair oids_gen oids_gen)
    (fun (a, b) ->
      let ma = Iset.of_list a and mb = Iset.of_list b in
      (* Build one side with a high id added and removed again via diff,
         so its array may carry trailing zero words. *)
      let high = 1000 in
      let padded =
        Coverage.diff
          (Coverage.add high (of_model ma))
          (Coverage.of_list [ high ])
      in
      Coverage.equal padded (of_model ma)
      && Coverage.equal (of_model ma) (of_model mb) = Iset.equal ma mb)

let test_of_array_len =
  QCheck.Test.make ~name:"of_array ~len takes a prefix" ~count:500
    QCheck.(pair oids_gen small_nat)
    (fun (oids, len) ->
      let arr = Array.of_list oids in
      let len = min len (Array.length arr) in
      let model = Iset.of_list (Array.to_list (Array.sub arr 0 len)) in
      check_same_elements "of_array" model (Coverage.of_array ~len arr))

(* The regression that motivated this file: a dense set big enough that
   per-word population counts exceed what survives in the low byte of a
   32-bit SWAR multiply only if the result is properly masked. *)
let test_dense_cardinal () =
  let n = 300 in
  let all = List.init n (fun i -> i) in
  Alcotest.(check int)
    "cardinal of [0..299]" n
    (Coverage.cardinal (Coverage.of_list all));
  Alcotest.(check int)
    "new_against empty counts all" n
    (Coverage.new_against (Coverage.of_list all) ~baseline:Coverage.empty)

let () =
  Alcotest.run "coverage"
    [
      ( "bitset vs Set.Make(Int)",
        [
          qtest test_build;
          qtest test_mem;
          qtest test_union;
          qtest test_diff;
          qtest test_new_against;
          qtest test_equal;
          qtest test_of_array_len;
          Alcotest.test_case "dense cardinal" `Quick test_dense_cardinal;
        ] );
    ]
