type event = Enter of { site : Site.t; pos : int } | Exit of { pos : int }

let pp ppf = function
  | Enter { site; pos } -> Format.fprintf ppf "enter %s@%d" (Site.name site) pos
  | Exit { pos } -> Format.fprintf ppf "exit@%d" pos
