type t = { ch : char; taint : Taint.t }

let make ch taint = { ch; taint }
let untainted ch = { ch; taint = Taint.empty }
let input i ch = { ch; taint = Taint.singleton i }
let code t = Char.code t.ch
let map f t = { t with ch = f t.ch }

let combine f a b = { ch = f a.ch b.ch; taint = Taint.union a.taint b.taint }

let is_tainted t = not (Taint.is_empty t.taint)

let pp ppf t =
  if t.ch >= ' ' && t.ch <= '~' then Format.fprintf ppf "%C%a" t.ch Taint.pp t.taint
  else Format.fprintf ppf "'\\x%02x'%a" (Char.code t.ch) Taint.pp t.taint
