lib/util/charset.ml: Char Format Int64 List Rng String
