test/test_util.ml: Alcotest Array Buffer Bytes Char Format Gc List Option Pdf_util Printf QCheck QCheck_alcotest String Weak
