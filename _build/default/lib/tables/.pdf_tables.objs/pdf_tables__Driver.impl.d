lib/tables/driver.ml: Cfg List Ll1 Pdf_instr Pdf_subjects Pdf_taint Printf
