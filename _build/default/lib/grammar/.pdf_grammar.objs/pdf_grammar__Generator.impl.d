lib/grammar/generator.ml: Buffer Grammar Hashtbl List Option Pdf_util
