lib/util/charset.mli: Format Rng
