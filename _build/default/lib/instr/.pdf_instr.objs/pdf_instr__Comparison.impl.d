lib/instr/comparison.ml: Format List Pdf_util Printf String
