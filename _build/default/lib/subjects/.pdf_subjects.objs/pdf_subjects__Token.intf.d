lib/subjects/token.mli:
