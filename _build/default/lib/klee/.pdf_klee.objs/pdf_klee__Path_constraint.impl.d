lib/klee/path_constraint.ml: Array Int Map Option Pdf_instr Pdf_util
