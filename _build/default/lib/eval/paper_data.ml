let table1_loc =
  [ ("ini", 293); ("csv", 297); ("json", 2483); ("tinyc", 191); ("mjs", 10920) ]

let headline_short = [ (Tool.Afl, 91.5); (Tool.Klee, 28.7); (Tool.Pfuzzer, 81.9) ]
let headline_long = [ (Tool.Afl, 5.0); (Tool.Klee, 7.5); (Tool.Pfuzzer, 52.5) ]

let tinyc_token_share =
  [ (Tool.Pfuzzer, 86.0); (Tool.Afl, 80.0); (Tool.Klee, 66.0) ]

let coverage_order =
  [
    ("ini", "AFL");
    ("csv", "AFL");
    ("json", "AFL");
    ("tinyc", "pFuzzer");
    ("mjs", "AFL");
  ]

let json_keyword_finders = [ "KLEE"; "pFuzzer" ]
